package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/resultcache"
	"swdual/internal/sched"
	"swdual/internal/seq"
)

// Config tunes a sharded Searcher.
type Config struct {
	// Shards is the number of database partitions (default 1). Shards may
	// exceed the sequence count; the surplus shards are empty.
	Shards int
	// Strategy selects the split (Contiguous default).
	Strategy Strategy
	// Engine configures each per-shard engine.Searcher: worker counts are
	// per shard, so Shards×(CPUs+GPUs) workers run in total.
	Engine engine.Config
	// Cache enables a coordinator-side result cache with singleflight
	// collapsing: a repeated search is answered before the scatter — no
	// shard sees it at all, which is what lets the cluster keep
	// answering hot queries while shards restart — and concurrent
	// identical searches collapse into one scatter. The per-shard
	// engines do NOT additionally cache (Engine.Cache is ignored under
	// sharding): one answer cached twice would double the memory for
	// zero extra hits. CacheSize and CacheBytes bound the coordinator
	// cache exactly like their engine.Config counterparts.
	Cache      bool
	CacheSize  int
	CacheBytes int64
	// Degraded selects what a scatter does when a range reports every
	// replica unavailable (replica.ErrRangeUnavailable): fail the whole
	// search (DegradedFail, the default and the historical behavior) or
	// answer from the surviving ranges with Coverage metadata
	// (DegradedPartial).
	Degraded DegradedPolicy
}

// DegradedPolicy selects how a scatter treats a range whose every
// replica is unavailable.
type DegradedPolicy int

const (
	// DegradedFail fails the whole search when any range is
	// unavailable — no partial answers ever.
	DegradedFail DegradedPolicy = iota
	// DegradedPartial gathers and merges the surviving ranges instead:
	// the Report carries Coverage naming what was skipped, hits from
	// searched ranges stay byte-identical to a full search's
	// contribution from those ranges, and the answer never enters the
	// result cache. Only a replica.ErrRangeUnavailable triggers
	// degradation; every other failure (skew, logical errors, a closed
	// coordinator) still fails the search.
	DegradedPartial
)

// Searcher is a sharded search service: one engine.Backend per database
// shard, a scatter of every Search call to all shards concurrently, and
// a deterministic gather of per-query hits (score desc, then shard-global
// SeqIndex asc) that makes results byte-identical to an unsharded engine
// over the same database. A backend is usually an in-process
// engine.Searcher, but any engine.Backend works — in particular a
// remote.Backend speaking the wire protocol to a shard server on another
// machine — and local and remote backends mix freely in one Searcher.
type Searcher struct {
	db       *seq.Set
	strategy Strategy
	topK     int
	// policy labels cached reports (New copies it from Engine.Policy;
	// zero — the dual-approximation default — after WithBackends). It
	// never affects hits, only the Report.Policy field of answers that
	// ran no scatter.
	policy master.Policy

	ranges   []Range
	backends []engine.Backend
	degraded DegradedPolicy

	dbResidues int64
	dbLengths  []int
	// rangeResidues holds each range's residue volume, precomputed so a
	// degraded gather prices skipped ranges without rescanning the
	// database.
	rangeResidues []int64
	checksum      uint32

	searches      atomic.Uint64
	queries       atomic.Uint64
	collapsed     atomic.Uint64
	degradedCount atomic.Uint64

	// cache and flight are the coordinator-side result cache (nil when
	// disabled): answers are served and collapsed before the scatter.
	cache  *resultcache.Cache
	flight *resultcache.Flight

	closeOnce sync.Once
	closeErr  error
}

// New splits db into cfg.Shards contiguous shards with cfg.Strategy and
// prepares one engine.Searcher (with its own worker pool) per shard.
// Callers own the returned Searcher and must Close it to release every
// shard's workers.
func New(db *seq.Set, cfg Config) (*Searcher, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil database")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	ranges := RangesFor(db, cfg.Shards, cfg.Strategy)
	// The coordinator caches whole-database answers; a second cache of
	// the same answer's slices inside each shard engine would only
	// duplicate memory, so sharded engines always run uncached.
	cfg.Engine.Cache = false
	backends := make([]engine.Backend, 0, len(ranges))
	for _, r := range ranges {
		sh, err := engine.New(db.Slice(r.Lo, r.Hi), cfg.Engine)
		if err != nil {
			for _, prev := range backends {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d [%d,%d): %w", len(backends), r.Lo, r.Hi, err)
		}
		backends = append(backends, sh)
	}
	s, err := WithBackends(db, cfg.Strategy, ranges, backends, cfg.Engine.TopK)
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	s.policy = cfg.Engine.Policy
	s.degraded = cfg.Degraded
	if cfg.Cache {
		s.EnableCache(cfg.CacheSize, cfg.CacheBytes)
	}
	return s, nil
}

// SetDegradedPolicy selects the degradation policy (see Config.Degraded)
// for a Searcher assembled with WithBackends. Call before serving
// traffic: like EnableCache, it is not synchronized with concurrent
// Search calls.
func (s *Searcher) SetDegradedPolicy(p DegradedPolicy) { s.degraded = p }

// DegradedPolicy reports the configured degradation policy.
func (s *Searcher) DegradedPolicy() DegradedPolicy { return s.degraded }

// EnableCache attaches the coordinator-side result cache and
// singleflight collapsing (see Config.Cache). maxEntries and maxBytes
// bound it (0 selects the resultcache defaults). Call before serving
// traffic: enabling is not synchronized with concurrent Search calls.
func (s *Searcher) EnableCache(maxEntries int, maxBytes int64) {
	s.cache = resultcache.New(resultcache.Config{MaxEntries: maxEntries, MaxBytes: maxBytes})
	s.flight = resultcache.NewFlight()
}

// WithBackends assembles a sharded Searcher over pre-built backends, one
// per contiguous range of db — the transport-agnostic constructor behind
// New. Backends may be in-process engine.Searchers, remote clients, or
// any mix; the coordinator still holds the whole database locally, which
// is what lets it verify every backend: backends[i].Checksum() must
// equal the checksum of db.Slice(ranges[i]), so a shard server that
// loaded a different database (skew) is rejected before any query runs.
// topK is the gather cap and must agree with each backend's own cap
// (engine.DefaultTopK when zero). On success the Searcher owns the
// backends and Close closes all of them; on error the caller keeps
// ownership and must close them itself.
func WithBackends(db *seq.Set, strategy Strategy, ranges []Range, backends []engine.Backend, topK int) (*Searcher, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil database")
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: no backends")
	}
	if len(ranges) != len(backends) {
		return nil, fmt.Errorf("shard: %d ranges for %d backends", len(ranges), len(backends))
	}
	at := 0
	for i, r := range ranges {
		if r.Lo != at || r.Hi < r.Lo {
			return nil, fmt.Errorf("shard: range %d is [%d,%d), want a contiguous partition (next index %d)", i, r.Lo, r.Hi, at)
		}
		at = r.Hi
	}
	if at != db.Len() {
		return nil, fmt.Errorf("shard: ranges cover [0,%d) of a %d-sequence database", at, db.Len())
	}
	if topK <= 0 {
		topK = engine.DefaultTopK // the gather cap must agree with each shard's cap
	}
	s := &Searcher{
		db:            db,
		strategy:      strategy,
		topK:          topK,
		ranges:        ranges,
		backends:      backends,
		dbLengths:     make([]int, db.Len()),
		rangeResidues: make([]int64, len(ranges)),
	}
	// One sweep over the residues computes everything the facade needs:
	// the whole-database fingerprint, each slice's fingerprint for the
	// skew guard (Checksum() is cached on both engine and remote
	// backends, so the comparisons are free), and the length statistics.
	// The ranges are a verified partition, so the sweep covers every
	// sequence exactly once.
	crcAll := crc32.NewIEEE()
	for i, r := range ranges {
		crcSlice := crc32.NewIEEE()
		for j := r.Lo; j < r.Hi; j++ {
			crcSlice.Write(db.Seqs[j].Residues)
			crcAll.Write(db.Seqs[j].Residues)
			s.dbLengths[j] = db.Seqs[j].Len()
			s.dbResidues += int64(db.Seqs[j].Len())
			s.rangeResidues[i] += int64(db.Seqs[j].Len())
		}
		if want := crcSlice.Sum32(); backends[i].Checksum() != want {
			return nil, fmt.Errorf("shard %d [%d,%d): backend database checksum %08x, want %08x (shard server loaded a different database?)",
				i, r.Lo, r.Hi, backends[i].Checksum(), want)
		}
	}
	s.checksum = crcAll.Sum32()
	return s, nil
}

// Shards returns the number of shards.
func (s *Searcher) Shards() int { return len(s.backends) }

// Ranges returns each shard's [Lo, Hi) database slice.
func (s *Searcher) Ranges() []Range { return s.ranges }

// Strategy returns the split strategy the Searcher was built with.
func (s *Searcher) Strategy() Strategy { return s.strategy }

// DB returns the whole (unsharded) database.
func (s *Searcher) DB() *seq.Set { return s.db }

// Alphabet returns the database alphabet.
func (s *Searcher) Alphabet() *alphabet.Alphabet { return s.db.Alpha }

// DBLengths returns the precomputed whole-database sequence lengths.
func (s *Searcher) DBLengths() []int { return s.dbLengths }

// Checksum fingerprints the whole database (CRC-32 of all residues, the
// same value an unsharded engine.Searcher reports), so serve-mode
// clients cannot tell a sharded backend from an unsharded one.
func (s *Searcher) Checksum() uint32 { return s.checksum }

// Stats aggregates the per-shard engine counters: preparation passes and
// workers sum across shards (N shards prepare N times), while Searches
// and Queries count the facade's own calls — each Search fans out to
// every shard but is still one search. Workers concatenates every
// shard's per-worker rate snapshot under shard-prefixed names
// (shard0/cpu-0), so the observed throughput of the whole cluster —
// in-process and remote shards alike — reads out of one list.
func (s *Searcher) Stats() engine.Stats {
	agg := engine.Stats{
		DBSequences:       s.db.Len(),
		DBResidues:        s.dbResidues,
		DBChecksum:        s.checksum,
		Searches:          s.searches.Load(),
		Queries:           s.queries.Load(),
		CollapsedSearches: s.collapsed.Load(),
		DegradedSearches:  s.degradedCount.Load(),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		agg.CacheHits, agg.CacheMisses, agg.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	}
	for si, b := range s.backends {
		st := b.Stats()
		agg.Prepared += st.Prepared
		agg.WorkersStarted += st.WorkersStarted
		agg.Waves += st.Waves
		agg.BatchedWaves += st.BatchedWaves
		agg.PipelinedWaves += st.PipelinedWaves
		agg.OverlapNanos += st.OverlapNanos
		// Backend cache counters fold into the same totals: per-shard
		// engines run uncached under this facade, but a backend may be a
		// remote engine serving other clients with its own cache.
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEvictions += st.CacheEvictions
		agg.CollapsedSearches += st.CollapsedSearches
		agg.ProfileEntries += st.ProfileEntries
		agg.ProfileHits += st.ProfileHits
		agg.ProfileMisses += st.ProfileMisses
		agg.ProfileEvictions += st.ProfileEvictions
		// Replication counters: a backend may be a replica.Set facade,
		// whose hedges, failovers and redials roll up here so one Stats
		// call shows availability events across every range.
		agg.HedgedSearches += st.HedgedSearches
		agg.FailedOver += st.FailedOver
		agg.Redials += st.Redials
		agg.DegradedSearches += st.DegradedSearches
		for _, w := range st.Workers {
			w.Name = fmt.Sprintf("shard%d/%s", si, w.Name)
			agg.Workers = append(agg.Workers, w)
		}
	}
	return agg
}

// PerShardStats reports each shard's own engine counters, in shard order.
func (s *Searcher) PerShardStats() []engine.Stats {
	out := make([]engine.Stats, len(s.backends))
	for i, b := range s.backends {
		out[i] = b.Stats()
	}
	return out
}

// Plan models the scatter: every shard plans the same queries over its
// own slice concurrently, and the gather waits for the slowest shard —
// so the modeled schedule of a sharded search is the per-shard schedule
// with the largest makespan.
func (s *Searcher) Plan(queryLens []int) (*sched.Schedule, error) {
	var worst *sched.Schedule
	for i, b := range s.backends {
		sch, err := b.Plan(queryLens)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sch != nil && (worst == nil || sch.Makespan > worst.Makespan) {
			worst = sch
		}
	}
	return worst, nil
}

// Search scatters the query set to every shard concurrently, waits for
// all of them, and gathers each query's hits through the deterministic
// TopK merge. It is safe for any number of goroutines and honors ctx the
// way the underlying engines do: on cancellation every shard returns
// ctx.Err() and unstarted tasks are skipped. Because a global top-k hit
// is necessarily in its own shard's top-k, merging the per-shard lists
// loses nothing.
//
// With the coordinator cache on (Config.Cache, EnableCache), a repeated
// search is answered before the scatter — no backend is touched — and
// concurrent identical searches collapse into one scatter, with the
// same leader/follower semantics as the engine-level cache.
func (s *Searcher) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	if queries == nil {
		return nil, fmt.Errorf("shard: nil query set")
	}
	if queries.Alpha != s.db.Alpha {
		return nil, fmt.Errorf("shard: query alphabet differs from database alphabet")
	}
	topK := opts.TopK
	if topK <= 0 || topK > s.topK {
		topK = s.topK
	}
	s.searches.Add(1)
	s.queries.Add(uint64(queries.Len()))
	if s.cache == nil || queries.Len() == 0 {
		return s.scatter(ctx, queries, topK)
	}
	// A dead context never gets a cached answer: callers rely on
	// cancellation meaning "stop", warm cache or not.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := resultcache.Key(s.checksum, topK, queries)
	if hits, ok := s.cache.Get(key); ok {
		return resultcache.Report(s.policy, queries, hits), nil
	}
	call, leader := s.flight.Join(key)
	if !leader {
		s.collapsed.Add(1)
		hits, err := call.Wait(ctx)
		if err != nil {
			return nil, err
		}
		rep := resultcache.Report(s.policy, queries, resultcache.CopyHits(hits))
		if cov := call.Coverage(); cov != nil {
			// The leader's answer was partial; a collapsed caller's answer
			// is the same partial answer and must say so.
			rep.Coverage = cov.Clone()
			s.degradedCount.Add(1)
		}
		return rep, nil
	}
	rep, err := s.scatter(ctx, queries, topK)
	if err != nil {
		s.flight.Finish(key, call, nil, err)
		return nil, err
	}
	hits := make([][]master.Hit, len(rep.Results))
	for i := range rep.Results {
		hits[i] = rep.Results[i].Hits
	}
	if rep.Coverage != nil {
		// A degraded answer never enters the cache — a later full-coverage
		// search must not be answered from a partial one — but it does
		// cross the flight, coverage and all, so collapsed callers get the
		// same labeled partial answer the leader got.
		s.flight.FinishPartial(key, call, resultcache.CopyHits(hits), rep.Coverage.Clone())
		return rep, nil
	}
	s.cache.Put(key, hits)
	s.flight.Finish(key, call, resultcache.CopyHits(hits), nil)
	return rep, nil
}

// scatter runs one real sharded search: fan out to every backend, wait,
// triage errors, gather. This is the whole of Search when the
// coordinator cache is off.
//
// Under DegradedPartial a range failing with
// replica.ErrRangeUnavailable does not cancel its siblings and does
// not fail the call: the survivors are gathered and the Report carries
// Coverage naming the skipped ranges. Every other failure keeps the
// historical semantics — first non-collateral error cancels the
// scatter and fails the search.
func (s *Searcher) scatter(ctx context.Context, queries *seq.Set, topK int) (*master.Report, error) {
	start := time.Now()
	// The first shard to fail cancels its siblings: a dead shard server
	// must fail the whole call fast, not after the slowest healthy shard
	// finishes work whose results will be discarded anyway.
	scatterCtx, cancelScatter := context.WithCancel(ctx)
	defer cancelScatter()
	reps := make([]*master.Report, len(s.backends))
	errs := make([]error, len(s.backends))
	// skipped[i] marks a range the degraded policy rode over; each
	// goroutine writes only its own slot, and wg.Wait orders the writes
	// before any read.
	skipped := make([]bool, len(s.backends))
	// The root cause is pinned at the moment it happens, not recovered
	// by scanning errs afterwards: when two shards fail in the same
	// scatter, an index-order scan could blame a shard whose only
	// failure was collateral cancellation, or pick different winners on
	// different runs. The first non-collateral error to reach the lock
	// wins, together with the index of the shard that raised it.
	var failMu sync.Mutex
	var failErr error
	failIdx := -1
	var wg sync.WaitGroup
	for i := range s.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = s.backends[i].Search(scatterCtx, queries, engine.SearchOptions{TopK: topK})
			if err := errs[i]; err != nil {
				// The marker interface (implemented by
				// replica.ErrRangeUnavailable) keeps this package from
				// importing replica, which would close an import cycle
				// through remote's tests.
				var rangeDown interface{ RangeUnavailable() bool }
				if s.degraded == DegradedPartial && errors.As(err, &rangeDown) && rangeDown.RangeUnavailable() {
					// The range is dark but the search survives: record
					// the skip and, crucially, do NOT cancel the
					// siblings — they are the answer now.
					skipped[i] = true
					return
				}
				if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					failMu.Lock()
					if failErr == nil {
						failErr, failIdx = err, i
					}
					failMu.Unlock()
				}
				cancelScatter()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err // the caller's own cancellation wins
	}
	if failErr != nil {
		// ErrClosed passes through untouched (callers compare against
		// it); anything else — notably a lost remote connection or an
		// exhausted replica set — names the failing shard.
		if errors.Is(failErr, engine.ErrClosed) {
			return nil, failErr
		}
		return nil, fmt.Errorf("shard %d [%d,%d): %w", failIdx, s.ranges[failIdx].Lo, s.ranges[failIdx].Hi, failErr)
	}
	// Only collateral context errors remain: every recorded error came
	// from cancelScatter (the caller's own ctx was checked above).
	for i, err := range errs {
		if err != nil && !skipped[i] {
			return nil, err
		}
	}
	anySurvived := false
	for i := range reps {
		if !skipped[i] {
			anySurvived = true
			break
		}
	}
	if !anySurvived {
		// Nothing to degrade to: with every range dark, the first
		// range's own error names the failure (all carry the same typed
		// cause).
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("shard %d [%d,%d): %w", i, s.ranges[i].Lo, s.ranges[i].Hi, err)
			}
		}
	}
	rep := s.gather(queries, reps, topK, start)
	if cov := s.coverage(skipped, errs); cov != nil {
		rep.Coverage = cov
		s.degradedCount.Add(1)
	}
	return rep, nil
}

// coverage builds the degraded-answer metadata for a scatter that
// skipped ranges, or nil when every range was searched (the common
// case must stay allocation- and metadata-free so full answers remain
// byte-identical to the non-degraded path).
func (s *Searcher) coverage(skipped []bool, errs []error) *master.Coverage {
	any := false
	for _, sk := range skipped {
		if sk {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	cov := &master.Coverage{
		RangesTotal:   len(s.ranges),
		ResiduesTotal: s.dbResidues,
	}
	for i, sk := range skipped {
		if !sk {
			cov.RangesSearched++
			cov.ResiduesSearched += s.rangeResidues[i]
			continue
		}
		reason := ""
		if errs[i] != nil {
			reason = errs[i].Error()
		}
		cov.Skipped = append(cov.Skipped, master.SkippedRange{
			Index:  i,
			Lo:     s.ranges[i].Lo,
			Hi:     s.ranges[i].Hi,
			Reason: reason,
		})
	}
	return cov
}

// gather merges the per-shard reports into one whole-database Report:
// hits via MergeTopK with each shard's index offset, accounting by sum,
// and worker tallies under shard-prefixed names (every shard has its own
// cpu-0). No single Schedule spans the shards — each ran its own wave —
// so Schedule stays nil. A nil entry in reps is a skipped range (a
// degraded scatter): it contributes nothing — an empty hit list merges
// as the absence it is — and skipping means the merged order of the
// surviving hits is exactly what a full search would have produced for
// those ranges.
func (s *Searcher) gather(queries *seq.Set, reps []*master.Report, topK int, start time.Time) *master.Report {
	rep := &master.Report{
		Results:     make([]master.QueryResult, queries.Len()),
		WorkerBusy:  map[string]time.Duration{},
		WorkerTasks: map[string]int{},
	}
	for _, r := range reps {
		if r != nil {
			rep.Policy = r.Policy
			break
		}
	}
	lists := make([][]master.Hit, len(reps))
	offsets := make([]int, len(reps))
	for qi := range rep.Results {
		qr := master.QueryResult{QueryIndex: qi, QueryID: queries.Seqs[qi].ID}
		for si, r := range reps {
			offsets[si] = s.ranges[si].Lo
			if r == nil {
				lists[si] = nil
				continue
			}
			res := r.Results[qi]
			lists[si] = res.Hits
			qr.Elapsed += res.Elapsed
			qr.SimSeconds += res.SimSeconds
			qr.Cells += res.Cells
		}
		qr.Hits = master.MergeTopK(lists, offsets, topK)
		rep.Results[qi] = qr
		rep.Cells += qr.Cells
	}
	for si, r := range reps {
		if r == nil {
			continue
		}
		for name, d := range r.WorkerBusy {
			rep.WorkerBusy[fmt.Sprintf("shard%d/%s", si, name)] += d
		}
		for name, n := range r.WorkerTasks {
			rep.WorkerTasks[fmt.Sprintf("shard%d/%s", si, name)] += n
		}
		// Shards run concurrently, so the modeled makespan of the sharded
		// search is the slowest shard's wave, not the sum.
		if r.SimMakespan > rep.SimMakespan {
			rep.SimMakespan = r.SimMakespan
		}
	}
	rep.Wall = time.Since(start)
	if sec := rep.Wall.Seconds(); sec > 0 {
		rep.GCUPS = float64(rep.Cells) / sec / 1e9
	}
	return rep
}

// Close closes every shard's backend (in-process dispatchers and worker
// pools, remote connections). It is idempotent and safe to call
// concurrently; the first error wins. Search calls after Close fail with
// engine.ErrClosed.
func (s *Searcher) Close() error {
	s.closeOnce.Do(func() {
		for _, b := range s.backends {
			if err := b.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
