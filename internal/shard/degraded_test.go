package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/faultinject"
	"swdual/internal/master"
	"swdual/internal/remote"
	"swdual/internal/replica"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// The degraded-mode suite: under DegradedPartial a range whose every
// replica is down is ridden over — the survivors answer, the Report
// says exactly what was skipped — while the default policy and every
// non-range failure keep failing the whole search. Faults come from
// the deterministic faultinject schedule, so every scenario (including
// "the range dies mid-stream, while its siblings are already
// searching") reproduces exactly, under -race, at any -count, with no
// sleeps.

// rangeDownErr fabricates the typed error a replica.Set returns when
// its last replica dies, shaped like the real thing so the tests pin
// the marker-interface detection path end to end.
func rangeDownErr(idx int, r Range) error {
	return &replica.ErrRangeUnavailable{
		Range:    fmt.Sprintf("shard %d [%d,%d)", idx, r.Lo, r.Hi),
		Index:    idx,
		Replicas: 2,
		Cause:    "injected: connection lost",
	}
}

// faultedSearcher builds a sharded Searcher whose every backend is a
// faultinject wrapper over a real per-range engine, returning the
// wrappers so tests can script faults and count calls.
func faultedSearcher(t *testing.T, db *seq.Set, shards, topK int) (*Searcher, []*faultinject.Backend) {
	t.Helper()
	ranges := RangesFor(db, shards, Contiguous)
	wrappers := make([]*faultinject.Backend, len(ranges))
	backends := make([]engine.Backend, len(ranges))
	for i, r := range ranges {
		eng, err := engine.New(db.Slice(r.Lo, r.Hi), engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
		if err != nil {
			t.Fatal(err)
		}
		wrappers[i] = faultinject.Wrap(eng)
		backends[i] = wrappers[i]
	}
	s, err := WithBackends(db, Contiguous, ranges, backends, topK)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, wrappers
}

// survivorHits computes the reference answer for a degraded search:
// per-range engines over the surviving slices, merged through the same
// deterministic TopK order the gather uses. A degraded answer must be
// byte-identical to this — the skipped range contributes nothing, and
// nothing else changes.
func survivorHits(t *testing.T, db *seq.Set, ranges []Range, skipped map[int]bool, queries *seq.Set, topK int) []byte {
	t.Helper()
	reps := make([]*master.Report, len(ranges))
	for i, r := range ranges {
		if skipped[i] {
			continue
		}
		eng, err := engine.New(db.Slice(r.Lo, r.Hi), engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Search(context.Background(), queries, engine.SearchOptions{TopK: topK})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	results := make([]master.QueryResult, queries.Len())
	lists := make([][]master.Hit, len(ranges))
	offsets := make([]int, len(ranges))
	for qi := range results {
		for si := range ranges {
			offsets[si] = ranges[si].Lo
			lists[si] = nil
			if reps[si] != nil {
				lists[si] = reps[si].Results[qi].Hits
			}
		}
		results[qi] = master.QueryResult{
			QueryIndex: qi,
			QueryID:    queries.Seqs[qi].ID,
			Hits:       master.MergeTopK(lists, offsets, topK),
		}
	}
	return hitBytes(t, results)
}

// residues sums sequence lengths over [lo, hi).
func residues(db *seq.Set, lo, hi int) int64 {
	var n int64
	for j := lo; j < hi; j++ {
		n += int64(db.Seqs[j].Len())
	}
	return n
}

// TestIdleFaultInjectKeepsShardedByteIdentical is the no-fault
// equivalence proof: a sharded Searcher whose every backend sits
// behind an idle faultinject wrapper — under DegradedPartial, the
// riskier policy — answers byte-identical to an unsharded engine, with
// no Coverage and no degraded count. This is what makes the wrapper
// safe to leave in every chaos topology while asserting full-coverage
// behavior.
func TestIdleFaultInjectKeepsShardedByteIdentical(t *testing.T) {
	const topK = 5
	db := synth.RandomSet(alphabet.Protein, 31, 10, 120, 4001)
	queries := synth.RandomSet(alphabet.Protein, 4, 20, 80, 4002)

	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	for _, shards := range []int{2, 5} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, wrappers := faultedSearcher(t, db, shards, topK)
			s.SetDegradedPolicy(DegradedPartial)
			rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Coverage != nil {
				t.Fatalf("full-coverage answer carries Coverage %+v", rep.Coverage)
			}
			if got := hitBytes(t, rep.Results); !bytes.Equal(got, want) {
				t.Fatal("sharded hits behind idle fault injectors differ from unsharded engine")
			}
			if st := s.Stats(); st.DegradedSearches != 0 {
				t.Fatalf("DegradedSearches = %d with no faults", st.DegradedSearches)
			}
			for i, w := range wrappers {
				if n := w.Injected(); n != 0 {
					t.Fatalf("wrapper %d injected %d faults with an empty schedule", i, n)
				}
			}
		})
	}
}

// TestDegradedPartialRidesOverDarkRange is the deterministic
// degradation proof: range 1 of 3 is parked at a gate — provably
// mid-call while its siblings search — and then dies with the typed
// every-replica-down error. The search must succeed with hits
// byte-identical to a merge of the survivors, Coverage must name the
// dark range with exact range and residue counts, DegradedSearches
// must tick, and the very next search (the schedule fires once) must
// recover to a full, Coverage-free, byte-identical answer.
func TestDegradedPartialRidesOverDarkRange(t *testing.T) {
	const topK = 4
	db := synth.RandomSet(alphabet.Protein, 30, 10, 120, 4003)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 80, 4004)

	s, wrappers := faultedSearcher(t, db, 3, topK)
	s.SetDegradedPolicy(DegradedPartial)
	ranges := s.Ranges()
	const dark = 1
	gate := faultinject.NewGate()
	wrappers[dark].SetRules(faultinject.Rule{
		Op: faultinject.OpSearch, Count: 1,
		Fault: faultinject.Fault{Gate: gate, Err: rangeDownErr(dark, ranges[dark])},
	})

	type answer struct {
		rep *master.Report
		err error
	}
	done := make(chan answer, 1)
	go func() {
		rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
		done <- answer{rep, err}
	}()
	// The dark range is provably inside its Search call — mid-stream,
	// not failed-before-start — when the gate announces it. Only then
	// does the test let it die.
	<-gate.Entered()
	gate.Release()
	a := <-done
	if a.err != nil {
		t.Fatalf("degraded search failed: %v", a.err)
	}

	cov := a.rep.Coverage
	if cov == nil {
		t.Fatal("degraded answer carries no Coverage")
	}
	if cov.RangesSearched != 2 || cov.RangesTotal != 3 {
		t.Fatalf("ranges %d/%d, want 2/3", cov.RangesSearched, cov.RangesTotal)
	}
	total := residues(db, 0, db.Len())
	darkRes := residues(db, ranges[dark].Lo, ranges[dark].Hi)
	if cov.ResiduesTotal != total || cov.ResiduesSearched != total-darkRes {
		t.Fatalf("residues %d/%d, want %d/%d", cov.ResiduesSearched, cov.ResiduesTotal, total-darkRes, total)
	}
	if f := cov.Fraction(); f <= 0 || f >= 1 {
		t.Fatalf("fraction %v, want strictly inside (0,1)", f)
	}
	if len(cov.Skipped) != 1 {
		t.Fatalf("%d skipped ranges, want 1: %+v", len(cov.Skipped), cov.Skipped)
	}
	sk := cov.Skipped[0]
	if sk.Index != dark || sk.Lo != ranges[dark].Lo || sk.Hi != ranges[dark].Hi {
		t.Fatalf("skipped range %+v, want index %d [%d,%d)", sk, dark, ranges[dark].Lo, ranges[dark].Hi)
	}
	if !strings.Contains(sk.Reason, "injected: connection lost") {
		t.Fatalf("skip reason %q does not carry the cause", sk.Reason)
	}

	want := survivorHits(t, db, ranges, map[int]bool{dark: true}, queries, topK)
	if got := hitBytes(t, a.rep.Results); !bytes.Equal(got, want) {
		t.Fatal("degraded hits differ from a merge of the surviving ranges")
	}
	if st := s.Stats(); st.DegradedSearches != 1 {
		t.Fatalf("DegradedSearches = %d, want 1", st.DegradedSearches)
	}

	// Recovery: the rule fired once, so the next search sees every
	// range and must be a full answer again.
	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	full := searchHits(t, ref, queries, 0)
	ref.Close()
	rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage != nil {
		t.Fatalf("recovered answer still carries Coverage %+v", rep.Coverage)
	}
	if got := hitBytes(t, rep.Results); !bytes.Equal(got, full) {
		t.Fatal("recovered hits differ from unsharded engine")
	}
	if st := s.Stats(); st.DegradedSearches != 1 {
		t.Fatalf("DegradedSearches = %d after recovery, want still 1", st.DegradedSearches)
	}
}

// TestDegradedAnswerNeverEntersCache pins the cache discipline: a
// degraded answer must not be served to a later caller who could get a
// full one. Search 1 is degraded (and uncached), search 2 re-scatters
// and gets the full answer (a second miss), search 3 is the first
// cache hit — of the full answer — and never reaches a shard.
func TestDegradedAnswerNeverEntersCache(t *testing.T) {
	const topK = 3
	db := synth.RandomSet(alphabet.Protein, 24, 10, 100, 4005)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 60, 4006)

	s, wrappers := faultedSearcher(t, db, 2, topK)
	s.SetDegradedPolicy(DegradedPartial)
	s.EnableCache(0, 0)
	ranges := s.Ranges()
	wrappers[1].SetRules(faultinject.Rule{
		Op: faultinject.OpSearch, Count: 1,
		Fault: faultinject.Fault{Err: rangeDownErr(1, ranges[1])},
	})

	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	full := searchHits(t, ref, queries, 0)
	ref.Close()

	rep1, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Coverage == nil {
		t.Fatal("search 1 should have been degraded")
	}
	rep2, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Coverage != nil {
		t.Fatalf("search 2 answered from the degraded search 1: %+v", rep2.Coverage)
	}
	if got := hitBytes(t, rep2.Results); !bytes.Equal(got, full) {
		t.Fatal("search 2 hits differ from unsharded engine")
	}
	rep3, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Coverage != nil {
		t.Fatal("cached full answer grew Coverage")
	}
	if got := hitBytes(t, rep3.Results); !bytes.Equal(got, full) {
		t.Fatal("cached hits differ from unsharded engine")
	}

	st := s.Stats()
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Fatalf("cache misses/hits %d/%d, want 2/1 (the degraded answer must be a non-event for the cache)", st.CacheMisses, st.CacheHits)
	}
	if st.DegradedSearches != 1 {
		t.Fatalf("DegradedSearches = %d, want 1", st.DegradedSearches)
	}
	// The scatter proof: searches 1 and 2 reached every shard, search 3
	// reached none.
	for i, w := range wrappers {
		if n := w.Calls(faultinject.OpSearch); n != 2 {
			t.Fatalf("shard %d saw %d searches, want 2", i, n)
		}
	}
}

// TestCollapsedFollowersShareDegradedAnswer parks the leader's scatter
// at a gate, piles followers onto the same key, then lets the gated
// range die: every caller must get the same labeled partial answer,
// and every one of them counts as a degraded search.
func TestCollapsedFollowersShareDegradedAnswer(t *testing.T) {
	const topK = 3
	const followers = 3
	db := synth.RandomSet(alphabet.Protein, 20, 10, 100, 4007)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 4008)

	s, wrappers := faultedSearcher(t, db, 2, topK)
	s.SetDegradedPolicy(DegradedPartial)
	s.EnableCache(0, 0)
	ranges := s.Ranges()
	gate := faultinject.NewGate()
	wrappers[0].SetRules(faultinject.Rule{
		Op: faultinject.OpSearch, Count: 1,
		Fault: faultinject.Fault{Gate: gate, Err: rangeDownErr(0, ranges[0])},
	})

	reports := make([]*master.Report, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	search := func(i int) {
		defer wg.Done()
		reports[i], errs[i] = s.Search(context.Background(), queries, engine.SearchOptions{})
	}
	wg.Add(1)
	go search(0)
	<-gate.Entered() // the leader's scatter is provably pinned mid-call
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go search(i)
	}
	waitShardStats(t, s, "followers to join", func(st engine.Stats) bool { return st.CollapsedSearches == followers })
	gate.Release()
	wg.Wait()

	want := survivorHits(t, db, ranges, map[int]bool{0: true}, queries, topK)
	for i := range reports {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		cov := reports[i].Coverage
		if cov == nil {
			t.Fatalf("caller %d got an unlabeled partial answer", i)
		}
		if cov.RangesSearched != 1 || cov.RangesTotal != 2 || len(cov.Skipped) != 1 || cov.Skipped[0].Index != 0 {
			t.Fatalf("caller %d coverage %+v", i, cov)
		}
		if got := hitBytes(t, reports[i].Results); !bytes.Equal(got, want) {
			t.Fatalf("caller %d hits differ from the survivor merge", i)
		}
	}
	// Followers must not alias the leader's Skipped slice: a caller
	// mutating its coverage cannot corrupt another's.
	reports[0].Coverage.Skipped[0].Reason = "mutated by caller 0"
	if reports[1].Coverage.Skipped[0].Reason == "mutated by caller 0" {
		t.Fatal("collapsed callers share one Coverage value")
	}
	st := s.Stats()
	if st.DegradedSearches != followers+1 {
		t.Fatalf("DegradedSearches = %d, want %d (leader plus every follower)", st.DegradedSearches, followers+1)
	}
	// The degraded answer crossed the flight but never the cache.
	if st.CacheHits != 0 || st.CacheMisses != followers+1 {
		t.Fatalf("cache hits/misses %d/%d, want 0/%d", st.CacheHits, st.CacheMisses, followers+1)
	}
	if n := wrappers[0].Calls(faultinject.OpSearch); n != 1 {
		t.Fatalf("shard 0 saw %d scatters for %d collapsed callers, want 1", n, followers+1)
	}
}

// TestDegradedCoverageCrossesTheWire serves a degraded coordinator
// over the wire protocol and requires a remote client to see exactly
// what a local caller sees: the same Coverage (counts, range bounds,
// reasons), byte-identical survivor hits, DegradedSearches in the
// remote Stats — and, once the range recovers, a full answer with no
// coverage at all.
func TestDegradedCoverageCrossesTheWire(t *testing.T) {
	const topK = 3
	db := synth.RandomSet(alphabet.Protein, 22, 10, 100, 4013)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 4014)

	s, wrappers := faultedSearcher(t, db, 2, topK)
	s.SetDegradedPolicy(DegradedPartial)
	ranges := s.Ranges()
	wrappers[0].SetRules(faultinject.Rule{
		Op: faultinject.OpSearch, Count: 1,
		Fault: faultinject.Fault{Err: rangeDownErr(0, ranges[0])},
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go engine.Serve(l, s)
	wb, err := remote.Dial(l.Addr().String(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer wb.Close()

	rep, err := wb.Search(context.Background(), queries, engine.SearchOptions{TopK: topK})
	if err != nil {
		t.Fatalf("remote degraded search failed: %v", err)
	}
	cov := rep.Coverage
	if cov == nil {
		t.Fatal("coverage was lost crossing the wire")
	}
	if cov.RangesSearched != 1 || cov.RangesTotal != 2 {
		t.Fatalf("remote coverage ranges %d/%d, want 1/2", cov.RangesSearched, cov.RangesTotal)
	}
	total := residues(db, 0, db.Len())
	darkRes := residues(db, ranges[0].Lo, ranges[0].Hi)
	if cov.ResiduesTotal != total || cov.ResiduesSearched != total-darkRes {
		t.Fatalf("remote coverage residues %d/%d, want %d/%d", cov.ResiduesSearched, cov.ResiduesTotal, total-darkRes, total)
	}
	if len(cov.Skipped) != 1 {
		t.Fatalf("remote coverage skipped %+v", cov.Skipped)
	}
	sk := cov.Skipped[0]
	if sk.Index != 0 || sk.Lo != ranges[0].Lo || sk.Hi != ranges[0].Hi || !strings.Contains(sk.Reason, "injected") {
		t.Fatalf("remote skipped range %+v", sk)
	}
	want := survivorHits(t, db, ranges, map[int]bool{0: true}, queries, topK)
	if got := hitBytes(t, rep.Results); !bytes.Equal(got, want) {
		t.Fatal("remote degraded hits differ from the survivor merge")
	}
	if st := wb.Stats(); st.DegradedSearches != 1 {
		t.Fatalf("remote Stats DegradedSearches = %d, want 1", st.DegradedSearches)
	}

	// Recovery over the same connection: full answer, zero coverage
	// bytes on the wire (the flag byte says full, nothing follows).
	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	full := searchHits(t, ref, queries, 0)
	ref.Close()
	rep, err = wb.Search(context.Background(), queries, engine.SearchOptions{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage != nil {
		t.Fatalf("recovered remote answer still carries Coverage %+v", rep.Coverage)
	}
	if got := hitBytes(t, rep.Results); !bytes.Equal(got, full) {
		t.Fatal("recovered remote hits differ from unsharded engine")
	}
}

// TestDegradedFailKeepsFailing pins the default policy: the same typed
// error that DegradedPartial rides over must fail the whole search,
// naming the shard, detectable with errors.As, and never claiming the
// coordinator is closed.
func TestDegradedFailKeepsFailing(t *testing.T) {
	const topK = 3
	db := synth.RandomSet(alphabet.Protein, 18, 10, 100, 4009)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 4010)

	s, wrappers := faultedSearcher(t, db, 2, topK)
	if s.DegradedPolicy() != DegradedFail {
		t.Fatalf("default policy %v, want DegradedFail", s.DegradedPolicy())
	}
	ranges := s.Ranges()
	wrappers[1].SetRules(faultinject.Rule{
		Op: faultinject.OpSearch, Count: 1,
		Fault: faultinject.Fault{Err: rangeDownErr(1, ranges[1])},
	})
	_, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err == nil {
		t.Fatal("DegradedFail search succeeded with a dark range")
	}
	var re *replica.ErrRangeUnavailable
	if !errors.As(err, &re) {
		t.Fatalf("error is not a replica.ErrRangeUnavailable: %v", err)
	}
	if re.Index != 1 || re.Replicas != 2 {
		t.Fatalf("typed error %+v", re)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error does not name the shard: %v", err)
	}
	if errors.Is(err, engine.ErrClosed) {
		t.Fatalf("dark-range error claims the coordinator is closed: %v", err)
	}
	if st := s.Stats(); st.DegradedSearches != 0 {
		t.Fatalf("DegradedSearches = %d under DegradedFail", st.DegradedSearches)
	}
}

// TestEveryRangeDarkFailsEvenPartial: with nothing to answer from,
// DegradedPartial has nothing to degrade to — the search fails with
// the typed error naming the first dark range, and no phantom
// zero-coverage answer is produced.
func TestEveryRangeDarkFailsEvenPartial(t *testing.T) {
	const topK = 3
	db := synth.RandomSet(alphabet.Protein, 16, 10, 100, 4011)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 4012)

	s, wrappers := faultedSearcher(t, db, 2, topK)
	s.SetDegradedPolicy(DegradedPartial)
	ranges := s.Ranges()
	for i, w := range wrappers {
		w.SetRules(faultinject.Rule{
			Op: faultinject.OpSearch, Count: 1,
			Fault: faultinject.Fault{Err: rangeDownErr(i, ranges[i])},
		})
	}
	_, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err == nil {
		t.Fatal("search succeeded with every range dark")
	}
	var re *replica.ErrRangeUnavailable
	if !errors.As(err, &re) {
		t.Fatalf("error is not a replica.ErrRangeUnavailable: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("error does not name the first dark shard: %v", err)
	}
	if st := s.Stats(); st.DegradedSearches != 0 {
		t.Fatalf("DegradedSearches = %d for a failed search", st.DegradedSearches)
	}
}
