package shard

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

func testSharded(t *testing.T, dbSize, shards int) *Searcher {
	t.Helper()
	db := synth.RandomSet(alphabet.Protein, dbSize, 10, 100, int64(500+dbSize))
	s, err := New(db, Config{Shards: shards, Engine: engine.Config{CPUs: 1, GPUs: 1, TopK: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedCloseIdempotentAndConcurrent(t *testing.T) {
	s := testSharded(t, 20, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 501)
	if _, err := s.Search(context.Background(), queries, engine.SearchOptions{}); err != engine.ErrClosed {
		t.Fatalf("search after close returned %v, want engine.ErrClosed", err)
	}
}

// TestShardedCloseDoesNotLeakGoroutines reuses the pool leak-check
// pattern: repeatedly building and closing sharded searchers — each
// owning several dispatcher goroutines and worker pools — must return
// the goroutine count to its baseline.
func TestShardedCloseDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := testSharded(t, 16, 4)
		queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, int64(600+i))
		if _, err := s.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// gateWorker blocks in Run until released, so tests can hold a scatter
// in flight deterministically. One instance may serve several shard
// pools concurrently: Run is safe from any number of goroutines.
type gateWorker struct {
	*master.RateEstimator
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateWorker() *gateWorker {
	return &gateWorker{RateEstimator: master.NewRateEstimator(1), started: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWorker) Name() string       { return "gate" }
func (w *gateWorker) Kind() sched.Kind   { return sched.CPU }
func (w *gateWorker) RateGCUPS() float64 { return 1 }
func (w *gateWorker) Run(qi int, q *seq.Sequence, db *seq.Set) master.QueryResult {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return master.QueryResult{QueryIndex: qi, QueryID: q.ID, Worker: "gate", Elapsed: time.Nanosecond, Cells: 1}
}

// TestShardedScatterCancellation cancels a Search while the scatter is
// provably in flight (the gate worker pins a task on every shard), and
// checks the call returns the context error promptly, no shard gets
// stuck, and the Searcher stays usable afterwards.
func TestShardedScatterCancellation(t *testing.T) {
	const shards = 3
	db := synth.RandomSet(alphabet.Protein, 12, 10, 60, 700)
	gw := newGateWorker()
	s, err := New(db, Config{Shards: shards, Engine: engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	}})
	if err != nil {
		t.Fatal(err)
	}
	queries := synth.RandomSet(alphabet.Protein, 5, 20, 50, 701)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(ctx, queries, engine.SearchOptions{})
		done <- err
	}()
	<-gw.started // at least one shard is pinned mid-wave
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("canceled scatter returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled scatter did not return")
	}

	// Releasing the gate lets the pinned tasks finish and the skipped
	// remainder drain; every shard must come back for the next search.
	close(gw.release)
	rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatalf("search after cancellation: %v", err)
	}
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results after cancellation, want %d", len(rep.Results), queries.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCloseUnblocksInFlightSearch: closing while a scatter waits
// must fail the call with ErrClosed rather than stranding it, matching
// the engine's own Close semantics.
func TestShardedCloseUnblocksInFlightSearch(t *testing.T) {
	gw := newGateWorker()
	db := synth.RandomSet(alphabet.Protein, 8, 10, 60, 702)
	s, err := New(db, Config{Shards: 2, Engine: engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	}})
	if err != nil {
		t.Fatal(err)
	}
	queries := synth.RandomSet(alphabet.Protein, 4, 20, 50, 703)
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(context.Background(), queries, engine.SearchOptions{})
		done <- err
	}()
	<-gw.started
	close(gw.release) // pinned tasks finish; the rest race Close
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close hung on in-flight scatter")
	}
	select {
	case err := <-done:
		if err != nil && err != engine.ErrClosed {
			t.Fatalf("in-flight search returned %v, want nil or ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight search stranded by Close")
	}
}
