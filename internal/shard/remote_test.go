package shard

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/remote"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// The remote equivalence suite: a Searcher whose shards live behind
// serve processes on the wire protocol must return hits byte-identical
// to the in-process sharded Searcher AND to one unsharded engine over
// the whole database — the transport must be invisible in the results.

// startShardServer serves db.Slice(r) over the wire protocol on a
// loopback listener and returns its address. The server (engine and
// listener) is torn down at test cleanup.
func startShardServer(t *testing.T, db *seq.Set, r Range, ecfg engine.Config) string {
	t.Helper()
	eng, err := engine.New(db.Slice(r.Lo, r.Hi), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	go engine.Serve(l, eng)
	t.Cleanup(func() {
		l.Close()
		eng.Close()
	})
	return l.Addr().String()
}

// dialShard dials a shard server with the slice checksum skew guard.
func dialShard(t *testing.T, addr string, db *seq.Set, r Range) engine.Backend {
	t.Helper()
	b, err := remote.Dial(addr, db.Slice(r.Lo, r.Hi).Checksum())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// remoteSharded assembles a Searcher whose every shard is remote.
func remoteSharded(t *testing.T, db *seq.Set, shards int, strategy Strategy, ecfg engine.Config) *Searcher {
	t.Helper()
	ranges := RangesFor(db, shards, strategy)
	backends := make([]engine.Backend, len(ranges))
	for i, r := range ranges {
		backends[i] = dialShard(t, startShardServer(t, db, r, ecfg), db, r)
	}
	s, err := WithBackends(db, strategy, ranges, backends, ecfg.TopK)
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		t.Fatal(err)
	}
	return s
}

func TestRemoteShardsMatchLocalAndUnsharded(t *testing.T) {
	const topK = 5
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 90, 1101)
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}
	// 0: every shard empty; 13, 31: prime-sized (never divide evenly).
	for _, dbSize := range []int{0, 13, 31} {
		db := synth.RandomSet(alphabet.Protein, dbSize, 10, 120, int64(3000+dbSize))
		ref, err := engine.New(db, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		want := searchHits(t, ref, queries, 0)
		ref.Close()
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("db=%d/shards=%d", dbSize, shards), func(t *testing.T) {
				local, err := New(db, Config{Shards: shards, Strategy: BalancedResidues, Engine: ecfg})
				if err != nil {
					t.Fatal(err)
				}
				defer local.Close()
				rem := remoteSharded(t, db, shards, BalancedResidues, ecfg)
				defer rem.Close()
				if got := searchHits(t, rem, queries, 0); !bytes.Equal(got, want) {
					t.Fatalf("remote-sharded hits differ from unsharded engine")
				}
				if got, lw := searchHits(t, rem, queries, 0), searchHits(t, local, queries, 0); !bytes.Equal(got, lw) {
					t.Fatalf("remote-sharded hits differ from in-process sharded")
				}
				if rem.Checksum() != local.Checksum() {
					t.Fatalf("remote checksum %08x != local %08x", rem.Checksum(), local.Checksum())
				}
			})
		}
	}
}

// TestMixedLocalAndRemoteShards drives one Searcher whose backends are
// part in-process engines, part remote connections — the mix the
// facade promises to support — and proves the results still match the
// unsharded engine byte for byte.
func TestMixedLocalAndRemoteShards(t *testing.T) {
	const topK = 4
	db := synth.RandomSet(alphabet.Protein, 29, 10, 120, 3301)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 80, 3302)
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}

	ref, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	ranges := RangesFor(db, 4, Contiguous)
	backends := make([]engine.Backend, len(ranges))
	for i, r := range ranges {
		if i%2 == 0 { // shards 0 and 2 remote, 1 and 3 in-process
			backends[i] = dialShard(t, startShardServer(t, db, r, ecfg), db, r)
		} else {
			eng, err := engine.New(db.Slice(r.Lo, r.Hi), ecfg)
			if err != nil {
				t.Fatal(err)
			}
			backends[i] = eng
		}
	}
	s, err := WithBackends(db, Contiguous, ranges, backends, topK)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := searchHits(t, s, queries, 0); !bytes.Equal(got, want) {
		t.Fatalf("mixed local+remote hits differ from unsharded engine")
	}
	st := s.Stats()
	if st.DBSequences != db.Len() || st.Prepared != 4 {
		t.Fatalf("mixed stats did not span shards: %+v", st)
	}
}

// TestRemoteTopKTieBreakAcrossShardBoundaries: identical sequences tie
// on score across every remote shard boundary; the gathered order must
// still be ascending global index, exactly as the unsharded pass
// reports it — over the wire, SeqIndex lifting included.
func TestRemoteTopKTieBreakAcrossShardBoundaries(t *testing.T) {
	const n, topK = 12, 8
	db := seq.NewSet(alphabet.Protein)
	res := strings.Repeat("MKWVTFISLL", 3)
	for i := 0; i < n; i++ {
		if err := db.Add(fmt.Sprintf("dup-%02d", i), "", []byte(res)); err != nil {
			t.Fatal(err)
		}
	}
	queries := seq.NewSet(alphabet.Protein)
	if err := queries.Add("q", "", []byte(res)); err != nil {
		t.Fatal(err)
	}
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}
	ref, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()
	for _, shards := range []int{2, 3, 5} {
		s := remoteSharded(t, db, shards, Contiguous, ecfg)
		if got := searchHits(t, s, queries, 0); !bytes.Equal(got, want) {
			t.Fatalf("%d remote shards: tie-broken hits differ from unsharded engine", shards)
		}
		s.Close()
	}
}

// TestWithBackendsRejectsChecksumSkew: a backend serving different
// sequences than the coordinator's slice must be rejected at assembly,
// before any query is scattered.
func TestWithBackendsRejectsChecksumSkew(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 60, 3401)
	skewed := db.Clone()
	skewed.Seqs[7].Residues[0] ^= 1 // one residue differs, in shard 1's range

	ranges := RangesFor(db, 2, Contiguous)
	ecfg := engine.Config{CPUs: 1, GPUs: 0, TopK: 3}
	backends := make([]engine.Backend, len(ranges))
	for i, r := range ranges {
		// Servers load the skewed database; the coordinator holds db.
		eng, err := engine.New(skewed.Slice(r.Lo, r.Hi), ecfg)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = eng
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	if _, err := WithBackends(db, Contiguous, ranges, backends, 3); err == nil {
		t.Fatal("checksum skew accepted")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("skew error does not name the checksum: %v", err)
	}
}

// TestRemoteMixedPoolShardsMatchUnsharded runs the transport-equivalence
// suite over heterogeneous pools: shard servers whose engines mix
// backends (with measured rates drifting from the advertised seeds over
// repeated waves) must stay byte-identical to one homogeneous unsharded
// engine, and their per-worker observed rates must cross the wire into
// the coordinator's aggregated Stats.
func TestRemoteMixedPoolShardsMatchUnsharded(t *testing.T) {
	const topK = 5
	db := synth.RandomSet(alphabet.Protein, 26, 10, 120, 3207)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 90, 1103)

	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	spec := master.PoolSpec{Striped: 1, Fine: 1, GPU: 1}
	const shards = 2
	s := remoteSharded(t, db, shards, Contiguous, engine.Config{Pool: spec, TopK: topK})
	defer s.Close()
	for round := 0; round < 2; round++ {
		if got := searchHits(t, s, queries, 0); !bytes.Equal(got, want) {
			t.Fatalf("remote mixed-pool round %d: hits differ from unsharded", round)
		}
	}

	st := s.Stats()
	if len(st.Workers) != shards*spec.Total() {
		t.Fatalf("%d worker rates over the wire for %d shards of %d workers", len(st.Workers), shards, spec.Total())
	}
	var observed uint64
	for _, w := range st.Workers {
		if !strings.HasPrefix(w.Name, "shard") {
			t.Fatalf("worker rate %q not shard-qualified", w.Name)
		}
		if w.AdvertisedGCUPS <= 0 {
			t.Fatalf("worker %s advertises %.3f GCUPS over the wire", w.Name, w.AdvertisedGCUPS)
		}
		observed += w.Tasks
	}
	if want := uint64(2 * queries.Len() * shards); observed != want {
		t.Fatalf("remote workers observed %d tasks, want %d", observed, want)
	}
}
