package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// The equivalence suite: a sharded Searcher must be indistinguishable —
// byte for byte — from one engine.Searcher over the whole database, for
// every shard count 1..8, both split strategies, and databases of
// awkward sizes (empty, single sequence, fewer sequences than shards,
// prime-sized), including TopK ties that straddle shard boundaries.

// hitBytes serializes per-query hits so "byte-identical" is literal.
func hitBytes(t *testing.T, results []master.QueryResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, res := range results {
		binary.Write(&buf, binary.LittleEndian, int64(res.QueryIndex))
		buf.WriteString(res.QueryID)
		binary.Write(&buf, binary.LittleEndian, int64(len(res.Hits)))
		for _, h := range res.Hits {
			binary.Write(&buf, binary.LittleEndian, int64(h.SeqIndex))
			binary.Write(&buf, binary.LittleEndian, int64(h.Score))
			buf.WriteString(h.SeqID)
		}
	}
	return buf.Bytes()
}

func searchHits(t *testing.T, s interface {
	Search(context.Context, *seq.Set, engine.SearchOptions) (*master.Report, error)
}, queries *seq.Set, topK int) []byte {
	t.Helper()
	rep, err := s.Search(context.Background(), queries, engine.SearchOptions{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results for %d queries", len(rep.Results), queries.Len())
	}
	return hitBytes(t, rep.Results)
}

func TestShardedMatchesUnshardedAcrossSizesAndStrategies(t *testing.T) {
	const topK = 5
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 90, 1001)
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}
	// 0: empty; 1: single; 3, 7: fewer sequences than high shard counts;
	// 13, 31: prime-sized (never divide evenly); 50: a few per shard.
	for _, dbSize := range []int{0, 1, 3, 7, 13, 31, 50} {
		db := synth.RandomSet(alphabet.Protein, dbSize, 10, 120, int64(2000+dbSize))
		ref, err := engine.New(db, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		want := searchHits(t, ref, queries, 0)
		ref.Close()
		for _, strategy := range []Strategy{Contiguous, BalancedResidues} {
			for shards := 1; shards <= 8; shards++ {
				t.Run(fmt.Sprintf("db=%d/%v/shards=%d", dbSize, strategy, shards), func(t *testing.T) {
					s, err := New(db, Config{Shards: shards, Strategy: strategy, Engine: ecfg})
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					if got := s.Shards(); got != shards {
						t.Fatalf("built %d shards, want %d", got, shards)
					}
					if got := searchHits(t, s, queries, 0); !bytes.Equal(got, want) {
						t.Fatalf("sharded hits differ from unsharded engine")
					}
					if s.Checksum() != s.Stats().DBChecksum {
						t.Fatalf("checksum disagrees with stats")
					}
				})
			}
		}
	}
}

// TestShardedChecksumMatchesUnsharded: a serve-mode client verifying the
// database fingerprint must not be able to tell a sharded backend from
// an unsharded one.
func TestShardedChecksumMatchesUnsharded(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 23, 10, 100, 77)
	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	s, err := New(db, Config{Shards: 4, Strategy: BalancedResidues, Engine: engine.Config{CPUs: 1, GPUs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Checksum() != ref.Checksum() {
		t.Fatalf("sharded checksum %08x != unsharded %08x", s.Checksum(), ref.Checksum())
	}
}

// TestTopKTieBreakAcrossShardBoundaries builds a database of identical
// sequences — every hit ties on score — split so the ties straddle every
// shard boundary. The gathered TopK must come back in ascending global
// index order, exactly as the unsharded TopHits pass reports it.
func TestTopKTieBreakAcrossShardBoundaries(t *testing.T) {
	const n, topK = 12, 8
	db := seq.NewSet(alphabet.Protein)
	res := strings.Repeat("MKWVTFISLL", 3)
	for i := 0; i < n; i++ {
		if err := db.Add(fmt.Sprintf("dup-%02d", i), "", []byte(res)); err != nil {
			t.Fatal(err)
		}
	}
	queries := seq.NewSet(alphabet.Protein)
	if err := queries.Add("q", "", []byte(res)); err != nil {
		t.Fatal(err)
	}
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}
	ref, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()
	for _, strategy := range []Strategy{Contiguous, BalancedResidues} {
		for _, shards := range []int{2, 3, 5, 7} {
			s, err := New(db, Config{Shards: shards, Strategy: strategy, Engine: ecfg})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			hits := rep.Results[0].Hits
			if len(hits) != topK {
				t.Fatalf("%v/%d shards: %d hits, want %d", strategy, shards, len(hits), topK)
			}
			for i, h := range hits {
				if h.SeqIndex != i {
					t.Fatalf("%v/%d shards: tie rank %d went to global seq %d (id %s), want %d",
						strategy, shards, i, h.SeqIndex, h.SeqID, i)
				}
				if h.Score != hits[0].Score {
					t.Fatalf("%v/%d shards: tie scores differ: %d vs %d", strategy, shards, h.Score, hits[0].Score)
				}
			}
			if got := hitBytes(t, rep.Results); !bytes.Equal(got, want) {
				t.Fatalf("%v/%d shards: tie-broken hits differ from unsharded engine", strategy, shards)
			}
			s.Close()
		}
	}
}

// TestShardedTopKOption: per-request TopK is honored below the config
// cap and clamped above it, same as the unsharded engine.
func TestShardedTopKOption(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 20, 10, 80, 88)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 89)
	s, err := New(db, Config{Shards: 3, Engine: engine.Config{CPUs: 1, GPUs: 0, TopK: 6}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), queries, engine.SearchOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range rep.Results {
		if len(r.Hits) != 2 {
			t.Fatalf("query %d: %d hits, want 2", qi, len(r.Hits))
		}
	}
	rep, err = s.Search(context.Background(), queries, engine.SearchOptions{TopK: 99})
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range rep.Results {
		if len(r.Hits) > 6 {
			t.Fatalf("query %d: %d hits exceed config TopK", qi, len(r.Hits))
		}
	}
}

// TestShardedAccountingSpansShards: cell counts must sum to the whole
// database volume and worker tallies must carry shard-qualified names.
func TestShardedAccountingSpansShards(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 24, 10, 100, 90)
	queries := synth.RandomSet(alphabet.Protein, 2, 30, 60, 91)
	s, err := New(db, Config{Shards: 4, Engine: engine.Config{CPUs: 1, GPUs: 0, TopK: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wantCells int64
	for i := range queries.Seqs {
		wantCells += int64(queries.Seqs[i].Len()) * db.TotalResidues()
	}
	if rep.Cells != wantCells {
		t.Fatalf("cells %d, want %d (whole database volume)", rep.Cells, wantCells)
	}
	tasks := 0
	for name, n := range rep.WorkerTasks {
		if !strings.HasPrefix(name, "shard") {
			t.Fatalf("worker tally %q not shard-qualified", name)
		}
		tasks += n
	}
	if tasks != queries.Len()*s.Shards() {
		t.Fatalf("%d tasks tallied, want %d (each query on each shard)", tasks, queries.Len()*s.Shards())
	}
	st := s.Stats()
	if st.Prepared != s.Shards() {
		t.Fatalf("prepared %d, want one pass per shard (%d)", st.Prepared, s.Shards())
	}
	if st.Searches != 1 || st.Queries != uint64(queries.Len()) {
		t.Fatalf("facade counters: %+v", st)
	}
	if per := s.PerShardStats(); len(per) != s.Shards() {
		t.Fatalf("%d per-shard stats for %d shards", len(per), s.Shards())
	}
}

// TestShardedPipelinedMatchesSequential extends the equivalence suite to
// wave pipelining: shards whose engines overlap wave planning with
// execution must gather hits byte-identical to shards running the strict
// full-wave fence — under concurrent clients, so shard dispatchers
// actually coalesce and chain waves rather than trivially running one.
func TestShardedPipelinedMatchesSequential(t *testing.T) {
	const topK = 5
	db := synth.RandomSet(alphabet.Protein, 40, 10, 120, 2032)
	mk := func(mode engine.PipelineMode) *Searcher {
		s, err := New(db, Config{Shards: 3, Strategy: BalancedResidues, Engine: engine.Config{
			CPUs: 1, GPUs: 1, TopK: topK, Pipeline: mode,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	on, off := mk(engine.PipelineOn), mk(engine.PipelineOff)
	defer on.Close()
	defer off.Close()
	const callers = 4
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		gots := make([]*master.Report, callers)
		wants := make([]*master.Report, callers)
		errs := make([]error, 2*callers)
		for i := 0; i < callers; i++ {
			queries := synth.RandomSet(alphabet.Protein, 2, 20, 90, int64(3000+10*round+i))
			wg.Add(2)
			go func(i int) {
				defer wg.Done()
				gots[i], errs[2*i] = on.Search(context.Background(), queries, engine.SearchOptions{})
			}(i)
			go func(i int) {
				defer wg.Done()
				wants[i], errs[2*i+1] = off.Search(context.Background(), queries, engine.SearchOptions{})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d caller %d: %v", round, i, err)
			}
		}
		for i := range gots {
			if !bytes.Equal(hitBytes(t, gots[i].Results), hitBytes(t, wants[i].Results)) {
				t.Fatalf("round %d caller %d: pipelined sharded hits differ from fenced", round, i)
			}
		}
	}
	// The facade must surface the shards' pipelining counters.
	if st := off.Stats(); st.PipelinedWaves != 0 {
		t.Fatalf("fenced shards reported pipelined waves: %+v", st)
	}
}

// TestShardedMixedPoolMatchesUnsharded extends the equivalence suite to
// heterogeneous pools and adaptive rates: shards whose engines run a
// mixed worker set (inter-seq, striped, fine-grained, GPU) with live
// measured rates must return hits byte-identical to the static-rate
// homogeneous unsharded engine, and the facade's Stats must surface
// every worker's observed rate under its shard-qualified name.
func TestShardedMixedPoolMatchesUnsharded(t *testing.T) {
	const topK = 5
	db := synth.RandomSet(alphabet.Protein, 31, 10, 120, 2031)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 90, 1002)

	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 1, TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	spec := master.PoolSpec{CPU: 1, Striped: 1, GPU: 1}
	for _, shards := range []int{1, 3} {
		s, err := New(db, Config{Shards: shards, Engine: engine.Config{Pool: spec, TopK: topK}})
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds so wave 2 schedules with rates observed in wave 1.
		for round := 0; round < 2; round++ {
			if got := searchHits(t, s, queries, 0); !bytes.Equal(got, want) {
				t.Fatalf("%d mixed-pool shards, round %d: hits differ from unsharded", shards, round)
			}
		}
		st := s.Stats()
		if len(st.Workers) != shards*spec.Total() {
			t.Fatalf("%d worker rates for %d shards of %d workers", len(st.Workers), shards, spec.Total())
		}
		var observed uint64
		for _, w := range st.Workers {
			if !strings.HasPrefix(w.Name, "shard") {
				t.Fatalf("worker rate %q not shard-qualified", w.Name)
			}
			observed += w.Tasks
		}
		if want := uint64(2 * queries.Len() * shards); observed != want {
			t.Fatalf("workers observed %d tasks, want %d", observed, want)
		}
		s.Close()
	}
}
