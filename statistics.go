package swdual

import (
	"swdual/internal/evalue"
)

// ScoreStats converts raw Smith-Waterman scores into Karlin-Altschul bit
// scores and E-values — the significance figures a database search
// reports next to each hit.
type ScoreStats struct {
	// Lambda and K are the Karlin-Altschul parameters in use.
	Lambda float64
	K      float64
	// Gapped reports whether they are published gapped values (true) or
	// the exact ungapped solution used as a conservative fallback.
	Gapped bool

	params evalue.Params
}

// NewScoreStats derives statistics parameters for the matrix and gap
// model of the options: published gapped values where available (e.g.
// BLOSUM62 10/2), otherwise the ungapped lambda solved exactly from the
// matrix and Robinson-Robinson background frequencies.
func NewScoreStats(opt Options) (*ScoreStats, error) {
	p, err := opt.params()
	if err != nil {
		return nil, err
	}
	kp, err := evalue.ForParams(p.Matrix, p.Gaps)
	if err != nil {
		return nil, err
	}
	return &ScoreStats{Lambda: kp.Lambda, K: kp.K, Gapped: kp.Gapped, params: kp}, nil
}

// BitScore converts a raw score to bits.
func (s *ScoreStats) BitScore(raw int) float64 { return s.params.BitScore(raw) }

// EValue returns the expected number of chance hits scoring at least raw
// for a query of queryLen residues against dbResidues database residues.
func (s *ScoreStats) EValue(raw, queryLen int, dbResidues int64) float64 {
	return s.params.EValue(raw, queryLen, dbResidues)
}

// ScoreThreshold returns the minimal raw score that is significant at
// E-value e in the given search space.
func (s *ScoreStats) ScoreThreshold(e float64, queryLen int, dbResidues int64) int {
	return s.params.ScoreForEValue(e, queryLen, dbResidues)
}
