package swdual_test

import (
	"net"
	"path/filepath"
	"sync"
	"testing"

	"swdual"
)

func TestAlignPair(t *testing.T) {
	al, err := swdual.AlignPair("MKWVTFISLL", "MKWVTFISLL", swdual.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if al.Identity != 1.0 {
		t.Fatalf("self alignment identity %v", al.Identity)
	}
	if al.CIGAR != "10M" {
		t.Fatalf("self alignment CIGAR %q", al.CIGAR)
	}
	score, err := swdual.ScorePair("MKWVTFISLL", "MKWVTFISLL", swdual.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if score != al.Score {
		t.Fatalf("ScorePair %d != AlignPair %d", score, al.Score)
	}
	if _, err := swdual.AlignPair("MKW#", "MKW", swdual.Options{}); err == nil {
		t.Fatal("expected error for invalid residue")
	}
}

func TestSearchPoliciesAgree(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 200)
	if err != nil {
		t.Fatal(err)
	}
	var ref *swdual.Report
	for _, policy := range []string{"dual-approx", "dual-approx-dp", "self-scheduling", "round-robin"} {
		rep, err := swdual.Search(db, queries, swdual.Options{CPUs: 2, GPUs: 2, TopK: 5, Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(rep.Results) != queries.Len() {
			t.Fatalf("%s: %d results for %d queries", policy, len(rep.Results), queries.Len())
		}
		if ref == nil {
			ref = rep
			continue
		}
		for qi := range rep.Results {
			got, want := rep.Results[qi].Hits, ref.Results[qi].Hits
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d hits vs %d", policy, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].Score != want[i].Score || got[i].SeqIndex != want[i].SeqIndex {
					t.Fatalf("%s query %d hit %d: (%d,%d) vs (%d,%d)", policy, qi, i,
						got[i].SeqIndex, got[i].Score, want[i].SeqIndex, want[i].Score)
				}
			}
		}
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := swdual.GenerateDatabase("Ensembl Rat Proteins", 2000)
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "db.swdb")
	fa := filepath.Join(dir, "db.fasta")
	if err := db.SaveBinary(bin); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFASTA(fa); err != nil {
		t.Fatal(err)
	}
	fromBin, err := swdual.LoadBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromFA, err := swdual.LoadFASTA(fa)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.Len() != db.Len() || fromFA.Len() != db.Len() {
		t.Fatalf("round trip lengths: bin %d fasta %d want %d", fromBin.Len(), fromFA.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		id0, res0 := db.Sequence(i)
		id1, res1 := fromBin.Sequence(i)
		id2, res2 := fromFA.Sequence(i)
		if id0 != id1 || res0 != res1 {
			t.Fatalf("binary round trip mismatch at %d", i)
		}
		if id0 != id2 || res0 != res2 {
			t.Fatalf("fasta round trip mismatch at %d", i)
		}
	}
}

func TestPlanPaperScale(t *testing.T) {
	plan, err := swdual.PaperPlatformPlan("UniProt", "standard", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table IV: 142.98 s at 8 workers; the model must land in the
	// same regime (±25%).
	if plan.Makespan < 107 || plan.Makespan > 179 {
		t.Fatalf("8-worker UniProt plan %.2f s, want within 25%% of 142.98", plan.Makespan)
	}
	if plan.Makespan < plan.LowerBound {
		t.Fatalf("makespan %.2f below lower bound %.2f", plan.Makespan, plan.LowerBound)
	}
	if plan.Makespan > 2*plan.LowerBound {
		t.Fatalf("makespan %.2f violates the 2x guarantee against LB %.2f", plan.Makespan, plan.LowerBound)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	db, err := swdual.GenerateDatabase("RefSeq Mouse Proteins", 4000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	opt := swdual.Options{TopK: 3}
	var wg sync.WaitGroup
	for i, kind := range []string{"cpu", "gpu"} {
		wg.Add(1)
		go func(i int, kind string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			if err := swdual.ConnectWorker(conn, db, kind, "", opt); err != nil {
				t.Errorf("worker: %v", err)
			}
		}(i, kind)
	}
	rep, err := swdual.ServeMaster(l, db, queries, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results for %d queries", len(rep.Results), queries.Len())
	}
	// Compare against an in-process run.
	local, err := swdual.Search(db, queries, swdual.Options{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rep.Results {
		got := rep.Results[qi].Hits
		want := local.Results[qi].Hits
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got), len(want))
		}
		for i := range got {
			if int(got[i].Score) != want[i].Score || int(got[i].SeqIndex) != want[i].SeqIndex {
				t.Fatalf("query %d hit %d mismatch", qi, i)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := swdual.GenerateDatabase("NotADatabase", 1); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	if _, err := swdual.GenerateQueries("nope", 1); err == nil {
		t.Fatal("expected error for unknown query set")
	}
	if _, err := swdual.Search(nil, nil, swdual.Options{}); err == nil {
		t.Fatal("expected error for nil databases")
	}
}
