package swdual_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"swdual"
)

func TestAlignPair(t *testing.T) {
	al, err := swdual.AlignPair("MKWVTFISLL", "MKWVTFISLL", swdual.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if al.Identity != 1.0 {
		t.Fatalf("self alignment identity %v", al.Identity)
	}
	if al.CIGAR != "10M" {
		t.Fatalf("self alignment CIGAR %q", al.CIGAR)
	}
	score, err := swdual.ScorePair("MKWVTFISLL", "MKWVTFISLL", swdual.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if score != al.Score {
		t.Fatalf("ScorePair %d != AlignPair %d", score, al.Score)
	}
	if _, err := swdual.AlignPair("MKW#", "MKW", swdual.Options{}); err == nil {
		t.Fatal("expected error for invalid residue")
	}
}

func TestSearchPoliciesAgree(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 200)
	if err != nil {
		t.Fatal(err)
	}
	var ref *swdual.Report
	for _, policy := range []string{"dual-approx", "dual-approx-dp", "self-scheduling", "round-robin"} {
		rep, err := swdual.Search(db, queries, swdual.Options{CPUs: 2, GPUs: 2, TopK: 5, Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(rep.Results) != queries.Len() {
			t.Fatalf("%s: %d results for %d queries", policy, len(rep.Results), queries.Len())
		}
		if ref == nil {
			ref = rep
			continue
		}
		for qi := range rep.Results {
			got, want := rep.Results[qi].Hits, ref.Results[qi].Hits
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d hits vs %d", policy, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].Score != want[i].Score || got[i].SeqIndex != want[i].SeqIndex {
					t.Fatalf("%s query %d hit %d: (%d,%d) vs (%d,%d)", policy, qi, i,
						got[i].SeqIndex, got[i].Score, want[i].SeqIndex, want[i].Score)
				}
			}
		}
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := swdual.GenerateDatabase("Ensembl Rat Proteins", 2000)
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "db.swdb")
	fa := filepath.Join(dir, "db.fasta")
	if err := db.SaveBinary(bin); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFASTA(fa); err != nil {
		t.Fatal(err)
	}
	fromBin, err := swdual.LoadBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromFA, err := swdual.LoadFASTA(fa)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.Len() != db.Len() || fromFA.Len() != db.Len() {
		t.Fatalf("round trip lengths: bin %d fasta %d want %d", fromBin.Len(), fromFA.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		id0, res0 := db.Sequence(i)
		id1, res1 := fromBin.Sequence(i)
		id2, res2 := fromFA.Sequence(i)
		if id0 != id1 || res0 != res1 {
			t.Fatalf("binary round trip mismatch at %d", i)
		}
		if id0 != id2 || res0 != res2 {
			t.Fatalf("fasta round trip mismatch at %d", i)
		}
	}
}

func TestPlanPaperScale(t *testing.T) {
	plan, err := swdual.PaperPlatformPlan("UniProt", "standard", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table IV: 142.98 s at 8 workers; the model must land in the
	// same regime (±25%).
	if plan.Makespan < 107 || plan.Makespan > 179 {
		t.Fatalf("8-worker UniProt plan %.2f s, want within 25%% of 142.98", plan.Makespan)
	}
	if plan.Makespan < plan.LowerBound {
		t.Fatalf("makespan %.2f below lower bound %.2f", plan.Makespan, plan.LowerBound)
	}
	if plan.Makespan > 2*plan.LowerBound {
		t.Fatalf("makespan %.2f violates the 2x guarantee against LB %.2f", plan.Makespan, plan.LowerBound)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	db, err := swdual.GenerateDatabase("RefSeq Mouse Proteins", 4000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	opt := swdual.Options{TopK: 3}
	var wg sync.WaitGroup
	for i, kind := range []string{"cpu", "gpu"} {
		wg.Add(1)
		go func(i int, kind string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			if err := swdual.ConnectWorker(conn, db, kind, "", opt); err != nil {
				t.Errorf("worker: %v", err)
			}
		}(i, kind)
	}
	rep, err := swdual.ServeMaster(l, db, queries, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results for %d queries", len(rep.Results), queries.Len())
	}
	// Compare against an in-process run.
	local, err := swdual.Search(db, queries, swdual.Options{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rep.Results {
		got := rep.Results[qi].Hits
		want := local.Results[qi].Hits
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got), len(want))
		}
		for i := range got {
			if int(got[i].Score) != want[i].Score || int(got[i].SeqIndex) != want[i].SeqIndex {
				t.Fatalf("query %d hit %d mismatch", qi, i)
			}
		}
	}
}

// TestConcurrentSearcherMatchesSerialOneShot is the acceptance check of
// the persistent engine: 8 concurrent Search calls on one Searcher must
// return hits identical to 8 serial one-shot swdual.Search calls.
func TestConcurrentSearcherMatchesSerialOneShot(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	opt := swdual.Options{CPUs: 2, GPUs: 2, TopK: 5}
	const callers = 8
	querySets := make([]*swdual.Database, callers)
	serial := make([]*swdual.Report, callers)
	for i := range querySets {
		querySets[i], err = swdual.GenerateQueries("standard", 300+10*i)
		if err != nil {
			t.Fatal(err)
		}
		serial[i], err = swdual.Search(db, querySets[i], opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := swdual.NewSearcher(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	concurrent := make([]*swdual.Report, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i], errs[i] = s.Search(context.Background(), querySets[i], swdual.SearchOptions{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(concurrent[i].Results) != len(serial[i].Results) {
			t.Fatalf("caller %d: %d results vs %d", i, len(concurrent[i].Results), len(serial[i].Results))
		}
		for qi := range concurrent[i].Results {
			got, want := concurrent[i].Results[qi].Hits, serial[i].Results[qi].Hits
			if len(got) != len(want) {
				t.Fatalf("caller %d query %d: %d hits vs %d", i, qi, len(got), len(want))
			}
			for hi := range got {
				if got[hi] != want[hi] {
					t.Fatalf("caller %d query %d hit %d: %+v vs %+v", i, qi, hi, got[hi], want[hi])
				}
			}
		}
	}
}

// TestSearcherSkipsRePreparation demonstrates the amortization contract:
// a second Search on the same Searcher reuses the prepared database and
// the running workers instead of rebuilding them.
func TestSearcherSkipsRePreparation(t *testing.T) {
	db, err := swdual.GenerateDatabase("RefSeq Mouse Proteins", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Search(context.Background(), queries, swdual.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(context.Background(), queries, swdual.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Prepared != 1 {
		t.Fatalf("database prepared %d times across two searches, want 1", st.Prepared)
	}
	if st.WorkersStarted != 2 {
		t.Fatalf("workers started %d times, want 2 (1 CPU + 1 GPU, never rebuilt)", st.WorkersStarted)
	}
	if st.Searches != 2 {
		t.Fatalf("searches %d, want 2", st.Searches)
	}
}

// TestSearcherServe drives the serve mode end to end over the public API.
func TestSearcherServe(t *testing.T) {
	db, err := swdual.GenerateDatabase("Ensembl Dog Proteins", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	remote, err := swdual.QueryServer(l.Addr().String(), queries, s.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	local, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range remote.Results {
		got, want := remote.Results[qi].Hits, local.Results[qi].Hits
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got), len(want))
		}
		for hi := range got {
			if got[hi].SeqIndex != want[hi].SeqIndex || got[hi].Score != want[hi].Score {
				t.Fatalf("query %d hit %d mismatch", qi, hi)
			}
		}
	}
	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestShardedSearcherMatchesUnsharded is the public-API acceptance check
// of the sharding layer: Options.Shards with either split strategy must
// return hits identical to the unsharded engine, over the serve wire too.
func TestShardedSearcherMatchesUnsharded(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	want, err := swdual.Search(db, queries, swdual.Options{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []string{"contiguous", "balanced"} {
		s, err := swdual.NewSearcher(db, swdual.Options{
			CPUs: 1, GPUs: 1, TopK: 5, Shards: 3, ShardSplit: split,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.Shards() != 3 {
			t.Fatalf("%s: %d shards, want 3", split, s.Shards())
		}
		got, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for qi := range got.Results {
			a, b := got.Results[qi].Hits, want.Results[qi].Hits
			if len(a) != len(b) {
				t.Fatalf("%s query %d: %d hits vs %d", split, qi, len(a), len(b))
			}
			for hi := range a {
				if a[hi] != b[hi] {
					t.Fatalf("%s query %d hit %d: %+v vs %+v", split, qi, hi, a[hi], b[hi])
				}
			}
		}
		if st := s.Stats(); st.Prepared != 3 {
			t.Fatalf("%s: %d preparation passes, want one per shard", split, st.Prepared)
		}

		// Serve mode over a sharded backend: remote clients see the same
		// hits and the same whole-database checksum.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(l) }()
		remote, err := swdual.QueryServer(l.Addr().String(), queries, s.Checksum())
		if err != nil {
			t.Fatal(err)
		}
		for qi := range remote.Results {
			a, b := remote.Results[qi].Hits, want.Results[qi].Hits
			if len(a) != len(b) {
				t.Fatalf("%s remote query %d: %d hits vs %d", split, qi, len(a), len(b))
			}
			for hi := range a {
				if a[hi].SeqIndex != b[hi].SeqIndex || a[hi].Score != b[hi].Score {
					t.Fatalf("%s remote query %d hit %d mismatch", split, qi, hi)
				}
			}
		}
		l.Close()
		if err := <-serveDone; err != nil {
			t.Fatalf("serve: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := swdual.NewSearcher(db, swdual.Options{Shards: 2, ShardSplit: "bogus"}); err == nil {
		t.Fatal("bogus shard split accepted")
	}
}

// TestRemoteShardedSearcherMatchesUnsharded is the public cluster-serve
// acceptance test: two ServeShard processes (played by goroutines) plus
// a coordinator built with Options.RemoteShards must return hits
// byte-identical to a single-process unsharded search of the same
// database, and a coordinator pointed at a skewed database must be
// refused at construction.
func TestRemoteShardedSearcherMatchesUnsharded(t *testing.T) {
	const shardCount = 2
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, ShardSplit: "balanced"}
	want, err := swdual.Search(db, queries, opt)
	if err != nil {
		t.Fatal(err)
	}

	addrs := make([]string, shardCount)
	serveDone := make(chan error, shardCount)
	for i := 0; i < shardCount; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		go func(i int, l net.Listener) {
			serveDone <- swdual.ServeShard(l, db, i, shardCount, opt)
		}(i, l)
	}

	coordOpt := opt
	coordOpt.RemoteShards = addrs
	s, err := swdual.NewSearcher(db, coordOpt)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != shardCount {
		t.Fatalf("%d shards, want %d", s.Shards(), shardCount)
	}
	got, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range got.Results {
		a, b := got.Results[qi].Hits, want.Results[qi].Hits
		if len(a) != len(b) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(a), len(b))
		}
		for hi := range a {
			if a[hi] != b[hi] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, hi, a[hi], b[hi])
			}
		}
	}
	if st := s.Stats(); st.Prepared != shardCount {
		t.Fatalf("%d preparation passes, want one per shard server", st.Prepared)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A coordinator whose local database differs from the servers' must
	// be rejected by the checksum skew guard before any search.
	skewed, err := swdual.GenerateDatabase("Ensembl Dog Proteins", 20000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := swdual.NewSearcher(skewed, coordOpt); err == nil {
		t.Fatal("skewed coordinator database accepted")
	}

	// ServeShard validates its slice coordinates before touching the
	// listener.
	if err := swdual.ServeShard(nil, db, 2, 2, opt); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if err := swdual.ServeShard(nil, nil, 0, 2, opt); err == nil {
		t.Fatal("nil database accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := swdual.GenerateDatabase("NotADatabase", 1); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	if _, err := swdual.GenerateQueries("nope", 1); err == nil {
		t.Fatal("expected error for unknown query set")
	}
	if _, err := swdual.Search(nil, nil, swdual.Options{}); err == nil {
		t.Fatal("expected error for nil databases")
	}
}

// TestPoolOptionMatchesDefaultWorkers pins the public adaptive-pool
// surface: a heterogeneous Options.Pool search returns hits identical
// to the default homogeneous worker set, and the Searcher's Stats
// expose every worker's observed (measured) GCUPS after the search.
func TestPoolOptionMatchesDefaultWorkers(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 200)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := swdual.Search(db, queries, swdual.Options{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}

	s, err := swdual.NewSearcher(db, swdual.Options{Pool: "cpu=1,striped=1,fine=1,gpu=1", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rep.Results {
		got, want := rep.Results[qi].Hits, ref.Results[qi].Hits
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
	}

	st := s.Stats()
	if len(st.Workers) != 4 {
		t.Fatalf("%d worker rate snapshots, want 4", len(st.Workers))
	}
	var tasks uint64
	for _, w := range st.Workers {
		if w.AdvertisedGCUPS <= 0 || w.ObservedGCUPS <= 0 {
			t.Fatalf("worker %s rates: %+v", w.Name, w)
		}
		tasks += w.Tasks
	}
	if tasks != uint64(queries.Len()) {
		t.Fatalf("workers observed %d tasks, want %d", tasks, queries.Len())
	}
}

// TestOptionErrorsTeachValidValues: malformed Policy and Pool options
// fail with errors that enumerate the accepted values.
func TestOptionErrorsTeachValidValues(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 50000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := swdual.Search(db, queries, swdual.Options{Policy: "greedy"}); err == nil ||
		!strings.Contains(err.Error(), "dual-approx-dp") {
		t.Fatalf("bad policy error %v must list the valid policies", err)
	}
	if _, err := swdual.Search(db, queries, swdual.Options{Pool: "tpu=1"}); err == nil ||
		!strings.Contains(err.Error(), "striped") {
		t.Fatalf("bad pool error %v must list the valid backends", err)
	}
	if _, err := swdual.Search(db, queries, swdual.Options{Pipeline: "sideways"}); err == nil ||
		!strings.Contains(err.Error(), "off") {
		t.Fatalf("bad pipeline error %v must list the valid modes", err)
	}
}

// TestPipelineOptionMatchesDefault: the public Pipeline knob must not
// change results — "on" (the default) and "off" return identical hits
// for the same search.
func TestPipelineOptionMatchesDefault(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 50000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	want, err := swdual.Search(db, queries, swdual.Options{Pipeline: "off", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := swdual.Search(db, queries, swdual.Options{Pipeline: "on", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range want.Results {
		a, b := got.Results[qi].Hits, want.Results[qi].Hits
		if len(a) != len(b) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestCacheOptionMatchesDefault: the public Cache knob must not change
// results — a cached Searcher returns hits identical to an uncached
// one, on the cold miss and on warm repeats, and the Stats counters
// account for every round.
func TestCacheOptionMatchesDefault(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 30000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 300)
	if err != nil {
		t.Fatal(err)
	}
	want, err := swdual.Search(db, queries, swdual.Options{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 3; round++ {
		rep, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for qi := range rep.Results {
			got, ref := rep.Results[qi].Hits, want.Results[qi].Hits
			if len(got) != len(ref) {
				t.Fatalf("round %d query %d: %d hits vs %d", round, qi, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("round %d query %d hit %d: %+v vs %+v", round, qi, i, got[i], ref[i])
				}
			}
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("misses/hits %d/%d, want 1/2", st.CacheMisses, st.CacheHits)
	}
	if st.Waves != 1 {
		t.Fatalf("waves %d, want 1 (repeats must be served from the cache)", st.Waves)
	}
}

// TestCacheServesConcurrentRepeats: once an answer is warm, any number
// of concurrent identical searches are pure cache hits — no new waves.
func TestCacheServesConcurrentRepeats(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 30000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 300)
	if err != nil {
		t.Fatal(err)
	}
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 2, TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	warm, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	reports := make([]*swdual.Report, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = s.Search(context.Background(), queries, swdual.SearchOptions{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		for qi := range reports[i].Results {
			got, ref := reports[i].Results[qi].Hits, warm.Results[qi].Hits
			if len(got) != len(ref) {
				t.Fatalf("caller %d query %d: %d hits vs %d", i, qi, len(got), len(ref))
			}
			for hi := range got {
				if got[hi] != ref[hi] {
					t.Fatalf("caller %d query %d hit %d: %+v vs %+v", i, qi, hi, got[hi], ref[hi])
				}
			}
		}
	}
	st := s.Stats()
	if st.CacheHits != callers {
		t.Fatalf("cache hits %d, want %d", st.CacheHits, callers)
	}
	if st.Waves != 1 {
		t.Fatalf("waves %d, want 1 (the warm-up wave)", st.Waves)
	}
}

// TestCacheSearchHonorsCancellation: a pre-cancelled context fails fast
// with ctx.Err() even when the answer is sitting warm in the cache.
func TestCacheSearchHonorsCancellation(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 250)
	if err != nil {
		t.Fatal(err)
	}
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, TopK: 3, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Search(context.Background(), queries, swdual.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled search returned %v, want context.Canceled", err)
	}
}

// TestReplicaShardedSearcherMatchesUnsharded is the public replication
// acceptance test: two ranges, each served by two interchangeable
// ServeShard processes, behind a coordinator built with
// Options.ReplicaShards. Hits must be byte-identical to the unsharded
// search; a replica down at construction must be tolerated as long as
// its range keeps one live member; a range with every replica dead must
// be refused with an error naming it.
func TestReplicaShardedSearcherMatchesUnsharded(t *testing.T) {
	const shardCount, replicas = 2, 2
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, ShardSplit: "balanced", DialTimeout: 5 * time.Second}
	want, err := swdual.Search(db, queries, opt)
	if err != nil {
		t.Fatal(err)
	}

	groups := make([][]string, shardCount)
	for i := 0; i < shardCount; i++ {
		for r := 0; r < replicas; r++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			groups[i] = append(groups[i], l.Addr().String())
			go swdual.ServeShard(l, db, i, shardCount, opt)
		}
	}

	coordOpt := opt
	coordOpt.ReplicaShards = groups
	s, err := swdual.NewSearcher(db, coordOpt)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != shardCount {
		t.Fatalf("%d shards, want %d", s.Shards(), shardCount)
	}
	got, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range got.Results {
		a, b := got.Results[qi].Hits, want.Results[qi].Hits
		if len(a) != len(b) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(a), len(b))
		}
		for hi := range a {
			if a[hi] != b[hi] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, hi, a[hi], b[hi])
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// An address nobody listens on: reserve a port, then free it.
	deadAddr := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		return addr
	}

	// One dead replica per range is tolerated: the live sibling carries
	// the range while the dead one is re-dialed in the background.
	degraded := coordOpt
	degraded.ReplicaShards = [][]string{
		{deadAddr(), groups[0][0]},
		{groups[1][0], deadAddr()},
	}
	s2, err := swdual.NewSearcher(db, degraded)
	if err != nil {
		t.Fatalf("coordinator refused a degraded-but-covered cluster: %v", err)
	}
	got2, err := s2.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range got2.Results {
		a, b := got2.Results[qi].Hits, want.Results[qi].Hits
		if len(a) != len(b) {
			t.Fatalf("degraded query %d: %d hits vs %d", qi, len(a), len(b))
		}
		for hi := range a {
			if a[hi] != b[hi] {
				t.Fatalf("degraded query %d hit %d: %+v vs %+v", qi, hi, a[hi], b[hi])
			}
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Every replica of a range dead: refused, naming the range.
	uncovered := coordOpt
	uncovered.ReplicaShards = [][]string{
		{groups[0][0], groups[0][1]},
		{deadAddr(), deadAddr()},
	}
	if _, err := swdual.NewSearcher(db, uncovered); err == nil {
		t.Fatal("coordinator accepted a range with no live replica")
	} else if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("uncovered-range error does not name the range: %v", err)
	}
}
